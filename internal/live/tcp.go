package live

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/transport"
)

// Peer is one outbound TCP link to another process hosting part of the
// network. Envelopes queue in a bounded SendQueue (same back-pressure policy
// as in-process edges) and a writer goroutine encodes them as wire frames.
// Connections are unidirectional by convention: each process dials every
// peer it sends to and serves a listener for inbound traffic, which keeps
// routing explicit — the dialer states which node ids the connection reaches
// — instead of learned from traffic.
type Peer struct {
	conn    net.Conn
	q       *SendQueue
	done    chan struct{}
	closeMu sync.Mutex
	closed  bool
}

// ConnectPeer dials addr, performs the hello exchange, and routes beacons
// addressed to the given remote node ids through the connection. The remote
// must be a Cluster with the same total N serving ServePeers on addr.
func (c *Cluster) ConnectPeer(addr string, remoteNodes []int) (*Peer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := transport.WriteWire(conn, transport.HelloMsg(c.cfg.N)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("live: hello send: %w", err)
	}
	hello, err := transport.ReadWire(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("live: hello recv: %w", err)
	}
	if err := checkHello(hello, c.cfg.N); err != nil {
		conn.Close()
		return nil, err
	}
	p := &Peer{
		conn: conn,
		q:    NewSendQueue(c.cfg.QueueCapacity, c.cfg.QueuePolicy),
		done: make(chan struct{}),
	}
	c.peerMu.Lock()
	c.peers = append(c.peers, p)
	for _, id := range remoteNodes {
		c.routes[id] = p
	}
	c.peerMu.Unlock()
	go p.writeLoop()
	return p, nil
}

// checkHello validates a handshake frame against this cluster's shape.
func checkHello(m transport.WireMsg, n int) error {
	switch {
	case m.Kind != transport.WireHello:
		return fmt.Errorf("live: peer sent frame kind %d before hello", m.Kind)
	case m.Version != transport.WireVersion:
		return fmt.Errorf("live: peer speaks wire version %d, want %d", m.Version, transport.WireVersion)
	case m.N != n:
		return fmt.Errorf("live: peer configured for %d nodes, this cluster has %d", m.N, n)
	}
	return nil
}

// writeLoop drains the peer queue onto the wire. A write error closes the
// connection; queued and future envelopes then drop (beacons are soft
// state — the periodic resend is the retry).
func (p *Peer) writeLoop() {
	defer close(p.done)
	bw := bufio.NewWriter(p.conn)
	buf := make([]byte, 0, 64)
	for {
		e, ok := p.q.Pop()
		if !ok {
			return
		}
		frame, err := transport.AppendWire(buf[:0], transport.BeaconMsg(e.From, e.To, e.SentAt, e.MinTransit, e.B))
		if err != nil {
			continue
		}
		buf = frame
		if _, err := bw.Write(frame); err != nil {
			p.Close()
			return
		}
		// Flush when the queue is momentarily empty; back-to-back sends
		// batch into one segment.
		if p.q.Len() == 0 {
			if err := bw.Flush(); err != nil {
				p.Close()
				return
			}
		}
	}
}

// Close shuts the link down: the queue stops accepting, the writer drains
// out, and the connection closes. Idempotent.
func (p *Peer) Close() {
	p.closeMu.Lock()
	already := p.closed
	p.closed = true
	p.closeMu.Unlock()
	if already {
		return
	}
	p.q.Close()
	<-p.done
	p.conn.Close()
}

// ServePeers accepts inbound peer connections on ln and delivers their
// beacon frames to owned-node inboxes until the listener closes (close it to
// stop; Stop does not know about the listener). Each accepted connection
// performs the hello exchange and is then receive-only.
func (c *Cluster) ServePeers(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go c.servePeerConn(conn)
	}
}

func (c *Cluster) servePeerConn(conn net.Conn) {
	defer conn.Close()
	hello, err := transport.ReadWire(conn)
	if err != nil || checkHello(hello, c.cfg.N) != nil {
		return
	}
	if err := transport.WriteWire(conn, transport.HelloMsg(c.cfg.N)); err != nil {
		return
	}
	// Unblock the blocking ReadWire below when the cluster stops.
	stopDone := make(chan struct{})
	defer close(stopDone)
	go func() {
		select {
		case <-c.stopCh:
			conn.Close()
		case <-stopDone:
		}
	}()
	br := bufio.NewReader(conn)
	for {
		m, err := transport.ReadWire(br)
		if err != nil {
			// Clean EOF, stop-triggered close and frame corruption all end
			// the connection the same way; the dialer's periodic beacons are
			// the retry mechanism.
			return
		}
		if m.Kind != transport.WireBeacon {
			continue
		}
		c.deliverLocal(Envelope{
			From: m.From, To: m.To,
			SentAt: m.SentAt, MinTransit: m.MinTransit, B: m.Beacon,
		})
	}
}
