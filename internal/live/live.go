// Package live is the live-transport deployment mode: the gradient
// synchronization state machine of the simulator, run against real time and
// real message passing instead of the discrete-event engine. Each node is a
// goroutine owning its state outright (the GHS message-driven pattern — one
// inbox channel per node, no shared algorithm state); beacons travel through
// bounded per-peer send queues with explicit back-pressure policy, either
// in-process (Cluster) or across OS processes over a length-prefixed TCP
// codec (transport.WriteWire / ReadWire, see tcp.go).
//
// Live runs are made reproducible by recording, not by controlling the
// schedule: every state-machine input (integration ticks with their hardware
// increments, delivered beacons) is appended to a trace, and Replay feeds the
// same inputs through the same nodeState code under the deterministic sim
// engine — producing a byte-identical final state (see trace.go, replay.go
// and DESIGN.md §Live transport).
package live

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hist"
	"repro/internal/topo"
	"repro/internal/transport"
)

// Config assembles a live cluster (one process's share of the network).
type Config struct {
	// N is the total node count across all processes (required, ≥ 1).
	N int
	// Edges is the undirected estimate graph (node ids in [0, N)).
	Edges [][2]int
	// Owned optionally restricts which node ids this process hosts
	// (multi-process mode); nil → all N. Beacons addressed to non-owned
	// neighbors route through peers attached with ConnectPeer.
	Owned []int
	// S is the gradient block size (target local-skew scale); 0 → 1.
	S float64
	// Mu is the fast-mode boost µ; 0 → 0.1.
	Mu float64
	// Rho is the hardware drift bound ρ; 0 → µ/60.
	Rho float64
	// Iota is the max-estimate chase threshold ι; 0 → 0.05.
	Iota float64
	// Tick is the integration step in sim units; 0 → 0.05.
	Tick float64
	// BeaconInterval is the beacon period in sim units; 0 → 0.25.
	BeaconInterval float64
	// TimeScale is the real duration of one sim unit; 0 → 20ms. Live sim time
	// is real elapsed time divided by TimeScale, so smaller values run the
	// protocol faster against the wall clock (and squeeze the real-time
	// margin the link parameters must cover).
	TimeScale time.Duration
	// Link gives the certified link model the estimate layer budgets
	// against. Zero value → a live default where Uncertainty = Delay: real
	// transit is near-zero sim time, so the certified minimum transit must be
	// 0 for estimates to stay lower bounds, and the whole error budget sits
	// in the delay + staleness terms.
	Link topo.LinkParams
	// Rates optionally sets per-node hardware clock rates (drift emulation);
	// nil → all 1. Length must equal N when set (indexed by node id, so every
	// process of a multi-process deployment passes the same slice).
	Rates []float64
	// QueueCapacity bounds each per-peer send queue; 0 → 64.
	QueueCapacity int
	// QueuePolicy selects what a full send queue does (default DropNewest —
	// shed beacons under back-pressure; see SendQueue).
	QueuePolicy QueuePolicy
	// Trace, when non-nil, receives the replayable run trace (header plus one
	// JSON line per state-machine input of the owned nodes; see TraceRecord).
	Trace io.Writer
}

func (c *Config) applyDefaults() error {
	if c.N < 1 {
		return fmt.Errorf("live: config needs at least one node, got N=%d", c.N)
	}
	if c.S == 0 {
		c.S = 1
	}
	if c.Mu == 0 {
		c.Mu = 0.1
	}
	if c.Rho == 0 {
		c.Rho = c.Mu / 60
	}
	if c.Iota == 0 {
		c.Iota = 0.05
	}
	if c.Tick == 0 {
		c.Tick = 0.05
	}
	if c.BeaconInterval == 0 {
		c.BeaconInterval = 0.25
	}
	if c.TimeScale == 0 {
		c.TimeScale = 20 * time.Millisecond
	}
	if c.Link == (topo.LinkParams{}) {
		d := c.BeaconInterval / 5
		c.Link = topo.LinkParams{Eps: d, Tau: d, Delay: d, Uncertainty: d}
	}
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 64
	}
	if c.Rates != nil && len(c.Rates) != c.N {
		return fmt.Errorf("live: Rates has %d entries for %d nodes", len(c.Rates), c.N)
	}
	for _, e := range c.Edges {
		if e[0] < 0 || e[0] >= c.N || e[1] < 0 || e[1] >= c.N || e[0] == e[1] {
			return fmt.Errorf("live: bad edge %v for N=%d", e, c.N)
		}
	}
	for _, id := range c.Owned {
		if id < 0 || id >= c.N {
			return fmt.Errorf("live: owned node %d out of range [0,%d)", id, c.N)
		}
	}
	return nil
}

func (c *Config) params() params {
	return params{
		S: c.S, Rho: c.Rho, Mu: c.Mu, Iota: c.Iota,
		Tick: c.Tick, BeaconInterval: c.BeaconInterval, Link: c.Link,
	}
}

func (c *Config) header() TraceHeader {
	return TraceHeader{
		Version: 1, N: c.N, Edges: c.Edges,
		S: c.S, Rho: c.Rho, Mu: c.Mu, Iota: c.Iota,
		Tick: c.Tick, BeaconInterval: c.BeaconInterval,
		Link: traceParams{
			Eps: c.Link.Eps, Tau: c.Link.Tau,
			Delay: c.Link.Delay, Uncertainty: c.Link.Uncertainty,
		},
	}
}

// liveNode pairs a node's state machine with its live-mode plumbing. The
// node's own loop goroutine is the only writer of st, seq and the schedules;
// the mutex exists for concurrent readers (daemon queries, fingerprinting).
type liveNode struct {
	mu          sync.Mutex
	st          *nodeState
	seq         uint64
	lastTickSim float64
	nextBeacon  float64
	rate        float64
	inbox       chan Envelope
	// pub is this node's slot in the cluster snapshot slab: the loop
	// goroutine publishes after every applied input, and queries read it
	// without ever touching mu (see snapshot.go and DESIGN.md §Live
	// transport).
	pub *snapSlot
	// out is parallel to st.peers; nil entries are non-owned neighbors whose
	// traffic routes through a TCP peer instead of an in-process queue.
	out []*SendQueue
}

// Cluster runs this process's share of a live network: a loop goroutine per
// owned node, a bounded send queue plus pump goroutine per in-process
// directed edge, TCP peers for edges crossing process boundaries, and an
// optional trace recorder. Construction wires everything; Start launches the
// goroutines; Stop tears them down and flushes the trace.
type Cluster struct {
	cfg        Config
	minTransit float64
	// nodes is indexed by node id; nil for nodes hosted by another process.
	nodes    []*liveNode
	owned    []int  // sorted owned ids
	isOwned  []bool // indexed by node id
	rec      *Recorder
	start    time.Time
	stopCh   chan struct{}
	nodeWG   sync.WaitGroup
	pumpWG   sync.WaitGroup
	started  bool
	stopped  bool
	unrouted uint64 // beacons to non-owned nodes with no attached peer route

	// slab holds one published snapshot slot per node id; epoch counts
	// publications cluster-wide, so an unchanged epoch certifies that every
	// slot is unchanged (the daemon keys its response caches on it).
	slab  []snapSlot
	epoch atomic.Uint64
	// tickHist records real intervals between consecutive ticker fires of
	// every owned node (nanoseconds); its quantiles versus tickNominal are
	// the protocol-jitter figure Stats reports.
	tickHist    hist.Atomic
	tickNominal time.Duration
	// skewScratch pools the per-report L vector so Skew allocates nothing in
	// steady state.
	skewScratch sync.Pool

	peerMu sync.Mutex
	peers  []*Peer
	routes map[int]*Peer // non-owned node id → outbound peer link
}

// NewCluster validates cfg and wires nodes, queues and pumps (nothing runs
// until Start).
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	minTransit := cfg.Link.Delay - cfg.Link.Uncertainty
	if minTransit < 0 {
		minTransit = 0
	}
	c := &Cluster{
		cfg:         cfg,
		minTransit:  minTransit,
		stopCh:      make(chan struct{}),
		routes:      make(map[int]*Peer),
		slab:        make([]snapSlot, cfg.N),
		tickNominal: time.Duration(cfg.Tick * float64(cfg.TimeScale)),
	}
	c.skewScratch.New = func() any {
		b := make([]float64, cfg.N)
		return &b
	}
	if cfg.Trace != nil {
		rec, err := NewRecorder(cfg.Trace, cfg.header())
		if err != nil {
			return nil, err
		}
		c.rec = rec
	}
	isOwned := make([]bool, cfg.N)
	if cfg.Owned == nil {
		for i := range isOwned {
			isOwned[i] = true
		}
	} else {
		for _, id := range cfg.Owned {
			isOwned[id] = true
		}
	}
	c.isOwned = isOwned
	for i, own := range isOwned {
		if own {
			c.owned = append(c.owned, i)
		}
	}
	if len(c.owned) == 0 {
		return nil, fmt.Errorf("live: Owned selects no nodes")
	}
	adj := make([][]int, cfg.N)
	for _, e := range cfg.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	p := cfg.params()
	c.nodes = make([]*liveNode, cfg.N)
	for _, i := range c.owned {
		sort.Ints(adj[i])
		rate := 1.0
		if cfg.Rates != nil {
			rate = cfg.Rates[i]
		}
		n := &liveNode{
			st:   newNodeState(i, adj[i], p),
			rate: rate,
			// Stagger first beacons across the interval so a cluster of
			// synchronized-at-start nodes doesn't burst-send forever.
			nextBeacon: cfg.BeaconInterval * float64(i+1) / float64(cfg.N),
			inbox:      make(chan Envelope, cfg.QueueCapacity),
			pub:        &c.slab[i],
			out:        make([]*SendQueue, len(adj[i])),
		}
		// Publish the initial state (seq 0) so queries arriving before the
		// first tick already see a consistent snapshot (mult 1, hw 0).
		n.pub.publish(n.st, 0)
		for j, peer := range adj[i] {
			if isOwned[peer] {
				n.out[j] = NewSendQueue(cfg.QueueCapacity, cfg.QueuePolicy)
			}
		}
		c.nodes[i] = n
	}
	return c, nil
}

// Start launches node loops and delivery pumps.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.start = time.Now()
	for _, i := range c.owned {
		n := c.nodes[i]
		for j, peer := range n.st.peers {
			if n.out[j] != nil {
				c.pumpWG.Add(1)
				go c.pump(n.out[j], c.nodes[peer])
			}
		}
	}
	for _, i := range c.owned {
		c.nodeWG.Add(1)
		go c.nodeLoop(c.nodes[i])
	}
}

// Stop halts all goroutines, closes attached peers, flushes the trace, and
// returns the first trace error (nil without a trace). Idempotent.
func (c *Cluster) Stop() error {
	if !c.started || c.stopped {
		return nil
	}
	c.stopped = true
	close(c.stopCh)
	// Close queues before waiting on node loops: under the Block policy a
	// node can be parked inside Offer on a full queue, and only Close wakes
	// it. Pumps drain what remains and exit on the closed queue.
	for _, i := range c.owned {
		for _, q := range c.nodes[i].out {
			if q != nil {
				q.Close()
			}
		}
	}
	c.nodeWG.Wait()
	c.pumpWG.Wait()
	c.peerMu.Lock()
	peers := append([]*Peer(nil), c.peers...)
	c.peerMu.Unlock()
	for _, p := range peers {
		p.Close()
	}
	if c.rec != nil {
		return c.rec.Flush()
	}
	return nil
}

// simNow converts real elapsed time to sim time.
func (c *Cluster) simNow() float64 {
	return float64(time.Since(c.start)) / float64(c.cfg.TimeScale)
}

// pump moves envelopes from one send queue into the destination inbox. The
// inbox send blocks when the destination is saturated, which propagates
// pressure back into the queue — where the policy decides between shedding
// (DropNewest) and stalling the sender (Block).
func (c *Cluster) pump(q *SendQueue, dst *liveNode) {
	defer c.pumpWG.Done()
	for {
		e, ok := q.Pop()
		if !ok {
			return
		}
		select {
		case dst.inbox <- e:
		case <-c.stopCh:
			return
		}
	}
}

// nodeLoop is one node's event loop: apply delivered beacons as they arrive,
// apply an integration tick on each ticker fire, send beacons on schedule.
// This goroutine is the only writer of the node's state, so the recorded
// per-node input order is exactly the applied order.
func (c *Cluster) nodeLoop(n *liveNode) {
	defer c.nodeWG.Done()
	ticker := time.NewTicker(c.tickNominal)
	defer ticker.Stop()
	var lastFire time.Time
	for {
		select {
		case <-c.stopCh:
			return
		case e := <-n.inbox:
			c.applyBeacon(n, e)
		case <-ticker.C:
			// Record the real inter-fire interval: its quantiles versus the
			// nominal tick are the protocol-jitter bound Stats reports (the
			// figure query load must not inflate).
			now := time.Now()
			if !lastFire.IsZero() {
				c.tickHist.Add(now.Sub(lastFire).Nanoseconds())
			}
			lastFire = now
			c.applyTick(n)
		}
	}
}

func (c *Cluster) applyTick(n *liveNode) {
	simNow := c.simNow()
	n.mu.Lock()
	dh := (simNow - n.lastTickSim) * n.rate
	if dh < 0 {
		dh = 0
	}
	n.lastTickSim = simNow
	n.st.applyTick(dh)
	rec := TraceRecord{Kind: RecTick, T: simNow, Node: n.st.id, Seq: n.seq, DH: dh, HW: n.st.hw}
	n.seq++
	n.pub.publish(n.st, n.seq)
	var b transport.Beacon
	send := simNow >= n.nextBeacon
	if send {
		b = n.st.beacon()
		n.nextBeacon += c.cfg.BeaconInterval
		if n.nextBeacon <= simNow {
			n.nextBeacon = simNow + c.cfg.BeaconInterval
		}
	}
	n.mu.Unlock()
	c.epoch.Add(1)
	if c.rec != nil {
		c.rec.Append(rec)
	}
	if send {
		env := Envelope{From: n.st.id, SentAt: simNow, MinTransit: c.minTransit, B: b}
		for j, peer := range n.st.peers {
			env.To = peer
			if q := n.out[j]; q != nil {
				q.Offer(env)
			} else {
				c.sendRemote(env)
			}
		}
	}
}

func (c *Cluster) applyBeacon(n *liveNode, e Envelope) {
	simNow := c.simNow()
	n.mu.Lock()
	n.st.applyBeacon(e.From, e.B, e.MinTransit)
	rec := TraceRecord{
		Kind: RecBeacon, T: simNow, Node: n.st.id, Seq: n.seq,
		From: e.From, LSent: e.B.L, MSent: e.B.M, MinTransit: e.MinTransit,
		HW: n.st.hw,
	}
	n.seq++
	n.pub.publish(n.st, n.seq)
	n.mu.Unlock()
	c.epoch.Add(1)
	if c.rec != nil {
		c.rec.Append(rec)
	}
}

// sendRemote routes an envelope addressed to a node another process hosts.
// Without an attached route the beacon is counted and dropped — beacons are
// soft state, and the next one retries the route.
func (c *Cluster) sendRemote(e Envelope) {
	c.peerMu.Lock()
	p := c.routes[e.To]
	c.peerMu.Unlock()
	if p == nil {
		atomic.AddUint64(&c.unrouted, 1)
		return
	}
	p.q.Offer(e)
}

// deliverLocal hands an inbound envelope (from a TCP peer) to the addressed
// owned node. Unknown or non-owned addressees are dropped with a count.
func (c *Cluster) deliverLocal(e Envelope) {
	if e.To < 0 || e.To >= len(c.nodes) || c.nodes[e.To] == nil {
		atomic.AddUint64(&c.unrouted, 1)
		return
	}
	select {
	case c.nodes[e.To].inbox <- e:
	case <-c.stopCh:
	}
}

// NodeSnapshot is a point-in-time read of one node's public state: one
// consistent published tuple (all fields belong to the same state-machine
// step). Seq is the number of inputs the node had applied at publication —
// dense and strictly monotone, so consecutive reads of one node can be
// ordered, and HW never regresses as Seq grows.
type NodeSnapshot struct {
	Node    int     `json:"node"`
	L       float64 `json:"l"`
	M       float64 `json:"m"`
	HW      float64 `json:"hw"`
	Mult    float64 `json:"mult"`
	Fast    uint64  `json:"fastTicks"`
	Slow    uint64  `json:"slowTicks"`
	Samples int     `json:"samples"`
	Seq     uint64  `json:"seq"`
}

// N returns the total node count across all processes.
func (c *Cluster) N() int { return len(c.nodes) }

// Owned returns the sorted ids this process hosts.
func (c *Cluster) Owned() []int { return c.owned }

// Edges returns the configured estimate graph.
func (c *Cluster) Edges() [][2]int { return c.cfg.Edges }

// S returns the resolved block size (the daemon's legality bound is 2·S).
func (c *Cluster) S() float64 { return c.cfg.S }

// SimNow returns the cluster's current sim time (0 before Start).
func (c *Cluster) SimNow() float64 {
	if !c.started {
		return 0
	}
	return c.simNow()
}

// Owns reports whether node id i is valid and hosted by this process.
func (c *Cluster) Owns(i int) bool {
	return i >= 0 && i < len(c.nodes) && c.nodes[i] != nil
}

// Epoch returns the cluster publication counter: it advances on every
// state-machine input any owned node applies, so an unchanged epoch
// certifies every published snapshot is unchanged. The daemon keys its
// response caches on it.
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// Snapshot reads one owned node's published state. Wait-free: the read never
// touches the node's mutex or its goroutine, only the snapshot slab.
func (c *Cluster) Snapshot(i int) (NodeSnapshot, error) {
	if i < 0 || i >= len(c.nodes) {
		return NodeSnapshot{}, fmt.Errorf("live: node %d out of range [0,%d)", i, len(c.nodes))
	}
	if c.nodes[i] == nil {
		return NodeSnapshot{}, fmt.Errorf("live: node %d is hosted by another process", i)
	}
	return c.slab[i].read(i), nil
}

// AppendSnapshots appends every owned node's published snapshot to dst and
// returns it — the allocation-free form of Snapshots. Each element is a
// consistent per-node tuple; the cut across nodes is not global (nodes keep
// ticking while the slice fills), which is fine for monitoring — use Stop +
// Fingerprint for a quiescent global state.
func (c *Cluster) AppendSnapshots(dst []NodeSnapshot) []NodeSnapshot {
	for _, i := range c.owned {
		dst = append(dst, c.slab[i].read(i))
	}
	return dst
}

// Snapshots reads every owned node (see AppendSnapshots for the cut
// semantics and the allocation-free variant).
func (c *Cluster) Snapshots() []NodeSnapshot {
	return c.AppendSnapshots(make([]NodeSnapshot, 0, len(c.owned)))
}

// SkewReport summarizes clock skew across this process's nodes at query
// time. Edges with a remote endpoint are not measurable locally and are
// excluded from MaxLocalSkew.
type SkewReport struct {
	SimNow       float64 `json:"simNow"`
	GlobalSkew   float64 `json:"globalSkew"`   // max L − min L over owned nodes
	MaxLocalSkew float64 `json:"maxLocalSkew"` // max |L_u − L_v| over local edges
	Bound        float64 `json:"bound"`        // the gradient target 2·S
	Legal        bool    `json:"legal"`        // MaxLocalSkew ≤ Bound
}

// Skew computes the skew report from one snapshot cut: every owned node's L
// is read exactly once (into a pooled scratch vector), and both the global
// spread and every edge difference are computed from those same values — the
// report is internally consistent even while nodes keep ticking. Wait-free
// and allocation-free in steady state.
func (c *Cluster) Skew() SkewReport {
	rep := SkewReport{SimNow: c.SimNow(), Bound: 2 * c.cfg.S, Legal: true}
	sp := c.skewScratch.Get().(*[]float64)
	ls := *sp
	first := true
	var minL, maxL float64
	for _, i := range c.owned {
		l := c.slab[i].readL()
		ls[i] = l
		if first || l < minL {
			minL = l
		}
		if first || l > maxL {
			maxL = l
		}
		first = false
	}
	rep.GlobalSkew = maxL - minL
	for _, e := range c.cfg.Edges {
		if !c.isOwned[e[0]] || !c.isOwned[e[1]] {
			continue
		}
		d := ls[e[0]] - ls[e[1]]
		if d < 0 {
			d = -d
		}
		if d > rep.MaxLocalSkew {
			rep.MaxLocalSkew = d
		}
	}
	rep.Legal = rep.MaxLocalSkew <= rep.Bound
	c.skewScratch.Put(sp)
	return rep
}

// LegalityReport is the daemon's /v1/legality payload: the skew report
// reduced to its verdict.
type LegalityReport struct {
	Legal        bool    `json:"legal"`
	Bound        float64 `json:"bound"`
	MaxLocalSkew float64 `json:"maxLocalSkew"`
	SimNow       float64 `json:"simNow"`
}

// Legality reduces the current skew report to the gradient-target verdict.
func (c *Cluster) Legality() LegalityReport {
	rep := c.Skew()
	return LegalityReport{
		Legal: rep.Legal, Bound: rep.Bound,
		MaxLocalSkew: rep.MaxLocalSkew, SimNow: rep.SimNow,
	}
}

// Stats aggregates transport, trace and tick-timing counters. Every source
// is an atomic folded at read time — reading stats never locks a node, a
// queue or the tick path.
type Stats struct {
	SimNow   float64 `json:"simNow"`
	Epoch    uint64  `json:"epoch"`
	Enqueued uint64  `json:"enqueued"`
	Dropped  uint64  `json:"dropped"`
	Unrouted uint64  `json:"unrouted"`
	// Reconnects counts successful peer-link redials; PeersDown is the
	// number of peer links currently disconnected and backing off.
	Reconnects uint64 `json:"reconnects"`
	PeersDown  int    `json:"peersDown"`
	Records    uint64 `json:"traceRecords"`
	// Tick timing: the nominal integration-tick period and the measured
	// p50/p99 of real inter-fire intervals across all owned nodes. P99
	// inflation over nominal is the reader-perturbation figure the epoch
	// snapshot read path exists to keep flat.
	TickNominalMs float64 `json:"tickNominalMs"`
	TickP50Ms     float64 `json:"tickP50Ms"`
	TickP99Ms     float64 `json:"tickP99Ms"`
}

// Stats reports cluster-wide transport and trace counters.
func (c *Cluster) Stats() Stats {
	st := Stats{
		SimNow:        c.SimNow(),
		Epoch:         c.epoch.Load(),
		Unrouted:      atomic.LoadUint64(&c.unrouted),
		TickNominalMs: float64(c.tickNominal) / float64(time.Millisecond),
	}
	for _, i := range c.owned {
		for _, q := range c.nodes[i].out {
			if q != nil {
				st.Enqueued += q.Enqueued()
				st.Dropped += q.Dropped()
			}
		}
	}
	c.peerMu.Lock()
	for _, p := range c.peers {
		st.Enqueued += p.q.Enqueued()
		st.Dropped += p.q.Dropped() + p.downDrops.Load()
		st.Reconnects += p.reconnects.Load()
		if p.down.Load() {
			st.PeersDown++
		}
	}
	c.peerMu.Unlock()
	if c.rec != nil {
		st.Records = c.rec.Records()
	}
	if c.tickHist.Count() > 0 {
		st.TickP50Ms = float64(c.tickHist.Quantile(0.5)) / float64(time.Millisecond)
		st.TickP99Ms = float64(c.tickHist.Quantile(0.99)) / float64(time.Millisecond)
	}
	return st
}

// Fingerprint hashes the owned nodes' state in id order (exact float64 bits;
// see fingerprintStates). Meaningful after Stop — on a running cluster the
// per-node locks give a cut, not a quiescent state. When this process owns
// all nodes, the fingerprint is directly comparable to Replay's fingerprint
// of the same run's trace.
func (c *Cluster) Fingerprint() string {
	states := make([]*nodeState, 0, len(c.owned))
	for _, i := range c.owned {
		n := c.nodes[i]
		n.mu.Lock()
		states = append(states, n.st)
	}
	fp := fingerprintStates(states)
	for _, i := range c.owned {
		c.nodes[i].mu.Unlock()
	}
	return fp
}
