package live

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/transport"
)

// ReplayResult is the outcome of feeding a recorded trace back through the
// node state machines under the sim engine.
type ReplayResult struct {
	// Fingerprint hashes the final per-node states exactly as
	// Cluster.Fingerprint does, so live run and replay compare directly.
	Fingerprint string
	// Records is the number of applied trace records.
	Records int
	// EndTime is the engine clock after the replay (the latest record time).
	EndTime float64
	// Snapshots is the final state of every node.
	Snapshots []NodeSnapshot
}

// Replay rebuilds the node state machines from the trace header and applies
// every record through the deterministic sim engine. Records are stably
// ordered by (time, node, per-node sequence); since every record mutates
// exactly one node and each node's inputs are totally ordered by its
// sequence numbers, this reproduces the live run's per-node input order
// exactly — and because nodeState is deterministic, the final state is
// bit-identical to the live cluster's (verified en route via each record's
// recorded hardware clock; a truncated or tampered trace fails fast here
// instead of silently fingerprinting differently).
func Replay(h TraceHeader, recs []TraceRecord) (ReplayResult, error) {
	adj := make([][]int, h.N)
	for _, e := range h.Edges {
		if e[0] < 0 || e[0] >= h.N || e[1] < 0 || e[1] >= h.N {
			return ReplayResult{}, fmt.Errorf("live: trace edge %v out of range for n=%d", e, h.N)
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	p := params{
		S: h.S, Rho: h.Rho, Mu: h.Mu, Iota: h.Iota,
		Tick: h.Tick, BeaconInterval: h.BeaconInterval, Link: h.Link.link(),
	}
	states := make([]*nodeState, h.N)
	for i := range states {
		sort.Ints(adj[i])
		states[i] = newNodeState(i, adj[i], p)
	}

	ordered := make([]TraceRecord, len(recs))
	copy(ordered, recs)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := &ordered[i], &ordered[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})

	engine := sim.NewEngine()
	nextSeq := make([]uint64, h.N)
	var endTime float64
	var applyErr error
	for i := range ordered {
		rec := ordered[i] // copy: the closure outlives the loop variable
		if rec.T > endTime {
			endTime = rec.T
		}
		engine.Schedule(rec.T, func(sim.Time) {
			if applyErr != nil {
				return
			}
			ns := states[rec.Node]
			if rec.Seq != nextSeq[rec.Node] {
				applyErr = fmt.Errorf("live: node %d record gap: seq %d, want %d",
					rec.Node, rec.Seq, nextSeq[rec.Node])
				return
			}
			nextSeq[rec.Node]++
			switch rec.Kind {
			case RecTick:
				ns.applyTick(rec.DH)
			case RecBeacon:
				ns.applyBeacon(rec.From, transport.Beacon{L: rec.LSent, M: rec.MSent}, rec.MinTransit)
			}
			if math.Float64bits(ns.hw) != math.Float64bits(rec.HW) {
				applyErr = fmt.Errorf("live: node %d seq %d: replayed hw %v, trace recorded %v",
					rec.Node, rec.Seq, ns.hw, rec.HW)
			}
		})
	}
	engine.RunUntil(endTime)
	if applyErr != nil {
		return ReplayResult{}, applyErr
	}

	res := ReplayResult{
		Fingerprint: fingerprintStates(states),
		Records:     len(ordered),
		EndTime:     endTime,
		Snapshots:   make([]NodeSnapshot, h.N),
	}
	for i, ns := range states {
		res.Snapshots[i] = NodeSnapshot{
			Node: i, L: ns.l, M: ns.m, HW: ns.hw, Mult: ns.mult,
			Fast: ns.fast, Slow: ns.slow, Samples: ns.est.SampleCount(),
		}
	}
	return res, nil
}

// ReplayTrace parses a trace stream and replays it.
func ReplayTrace(r io.Reader) (ReplayResult, error) {
	h, recs, err := ReadTrace(r)
	if err != nil {
		return ReplayResult{}, err
	}
	return Replay(h, recs)
}
