package live

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/estimate"
	"repro/internal/topo"
	"repro/internal/transport"
)

// nodeState is the pure per-node synchronization state machine of the live
// mode: one node's clocks, its beacon-sample estimates, and the gradient
// fast/slow rule, with no reference to wall clocks, channels or goroutines.
// Exactly this code runs in both execution harnesses — the live cluster
// (driven by real time and real transports) and the trace replay (driven by
// the sim engine) — which is what makes a recorded live run replay
// byte-identically: applyTick and applyBeacon are deterministic functions of
// their recorded arguments, applied in the recorded per-node order.
//
// The step rule is the single-threshold gradient algorithm of [11]
// (baselines.BlockSync) in per-node form: max-estimate flooding via beacons,
// and a fast/slow mode decision from neighbor estimates served by the
// node-local estimate store (estimate.LocalBeacons — the same certified
// bound as the simulator's messaging layer).
type nodeState struct {
	id   int
	l    float64 // logical clock L_u
	m    float64 // max estimate M_u
	mult float64 // current logical rate multiplier
	hw   float64 // hardware clock H_u (integrated from recorded increments)

	fast, slow uint64 // mode tick counters

	s, rho, mu, iota, tick float64
	link                   topo.LinkParams
	est                    *estimate.LocalBeacons
	peers                  []int // sorted neighbor ids
}

func newNodeState(id int, peers []int, p params) *nodeState {
	return &nodeState{
		id:   id,
		mult: 1,
		s:    p.S,
		rho:  p.Rho,
		mu:   p.Mu,
		iota: p.Iota,
		tick: p.Tick,
		link: p.Link,
		est: estimate.NewLocalBeacons(estimate.MessagingConfig{
			Rho:            p.Rho,
			Mu:             p.Mu,
			BeaconInterval: p.BeaconInterval,
			TickSlop:       2 * p.Tick,
		}, p.Link),
		peers: peers,
	}
}

// params is the shared parameter block of every node (extracted from Config
// by the cluster and from the trace header by the replay).
type params struct {
	S, Rho, Mu, Iota     float64
	Tick, BeaconInterval float64
	Link                 topo.LinkParams
}

// applyBeacon ingests one delivered beacon: record the estimate sample
// (stamped with the node's current hardware clock, exactly as the
// simulator's RecordBeacon stamps hw(to)) and flood the max estimate with
// the certified-minimum transit credit.
func (ns *nodeState) applyBeacon(from int, b transport.Beacon, minTransit float64) {
	ns.est.Record(from, b.L, ns.hw, minTransit)
	credit := minTransit - ns.tick
	if credit < 0 {
		credit = 0
	}
	if cand := b.M + (1-ns.rho)*credit; cand > ns.m {
		ns.m = cand
	}
}

// applyTick advances the node by one integration tick with hardware
// increment dh. The phase order mirrors the simulator runtime exactly —
// hardware integration first (runner.driftShard), then mode decision from
// the fresh hardware clock, then logical integration (BlockSync's
// decide/integrate phases) — so a live tick and a replayed tick perform the
// same float operations in the same order.
func (ns *nodeState) applyTick(dh float64) {
	ns.hw += dh
	ns.mult = ns.decideMode()
	ns.l += ns.mult * dh
	oneMinus := (1 - ns.rho) / (1 + ns.rho)
	if ns.m <= ns.l {
		ns.m = ns.l
	} else {
		ns.m += oneMinus * dh
		if ns.m < ns.l {
			ns.m = ns.l
		}
	}
}

// decideMode is baselines.BlockSync.decideMode in per-node form, with the
// neighbor estimates served by the node-local store.
func (ns *nodeState) decideMode() float64 {
	lu := ns.l
	delta := ns.s / 20
	eps := ns.est.Eps()
	tau := ns.link.Tau
	fastWitness, fastBlocked := false, false
	slowWitness, slowBlocked := false, false
	for _, v := range ns.peers {
		est, ok := ns.est.Estimate(v, ns.hw)
		if !ok {
			continue
		}
		if est-lu >= ns.s-eps {
			fastWitness = true
		}
		if lu-est > ns.s+2*ns.mu*tau+eps {
			fastBlocked = true
		}
		if lu-est >= 1.5*ns.s-delta-eps {
			slowWitness = true
		}
		if est-lu > 1.5*ns.s+delta+eps+ns.mu*(1+ns.rho)*tau {
			slowBlocked = true
		}
	}
	switch {
	case slowWitness && !slowBlocked:
		ns.slow++
		return 1
	case fastWitness && !fastBlocked:
		ns.fast++
		return 1 + ns.mu
	case lu >= ns.m-1e-12:
		ns.slow++
		return 1
	case lu <= ns.m-ns.iota:
		ns.fast++
		return 1 + ns.mu
	default:
		if ns.mult > 1 {
			ns.fast++
		} else {
			ns.slow++
		}
		return ns.mult
	}
}

// beacon snapshots the node's send payload.
func (ns *nodeState) beacon() transport.Beacon {
	return transport.Beacon{L: ns.l, M: ns.m}
}

// fingerprintLine renders the node's state as exact hexadecimal floats —
// FormatFloat 'x' is a lossless float64 encoding — so two states fingerprint
// equal iff they are bit-identical.
func (ns *nodeState) fingerprintLine(sb *strings.Builder) {
	fmt.Fprintf(sb, "%d %s %s %s %s %d %d\n",
		ns.id,
		strconv.FormatFloat(ns.l, 'x', -1, 64),
		strconv.FormatFloat(ns.m, 'x', -1, 64),
		strconv.FormatFloat(ns.hw, 'x', -1, 64),
		strconv.FormatFloat(ns.mult, 'x', -1, 64),
		ns.fast, ns.slow)
}

// fingerprintStates hashes the full per-node state vector. Both the live
// cluster (after Stop) and the replay result use this one function, so a
// live run and its replay agree on the fingerprint iff every node's final
// state matches bit for bit.
func fingerprintStates(states []*nodeState) string {
	var sb strings.Builder
	for _, ns := range states {
		ns.fingerprintLine(&sb)
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}
