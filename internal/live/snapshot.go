package live

import (
	"math"
	"sync/atomic"
)

// snapSlot is one node's published snapshot: the read-path face of the live
// state machine, updated by the node's own loop goroutine after every applied
// input and read by any number of query goroutines without locks. Publication
// is seqlock-style over all-atomic fields, which keeps it honest under the
// race detector (plain-field seqlocks are data races by Go's memory model):
// the writer bumps ver to odd, stores every field, bumps ver to even; a
// reader retries until it sees the same even ver on both sides of its loads,
// at which point the whole tuple — (seq, hw, l, m, ...) — is a consistent
// cut of one published state. Readers never block the writer and the writer
// never blocks readers; a reader retries only during the ~ten stores of an
// in-flight publish.
//
// Slots are padded to two cache lines so neighboring nodes' publications
// (and reader traffic) never false-share.
type snapSlot struct {
	ver atomic.Uint64 // seqlock version: odd = publish in progress

	seq     atomic.Uint64 // state-machine input count (dense, monotone)
	l       atomic.Uint64 // float64 bits of L_u
	m       atomic.Uint64 // float64 bits of M_u
	hw      atomic.Uint64 // float64 bits of H_u (monotone)
	mult    atomic.Uint64 // float64 bits of the current rate multiplier
	fast    atomic.Uint64
	slow    atomic.Uint64
	samples atomic.Uint64

	_ [56]byte // pad 9×8 B of fields to 2×64 B lines
}

// publish stores the node's current state into the slot. Must only be called
// from the node's loop goroutine (single writer per slot).
func (s *snapSlot) publish(ns *nodeState, seq uint64) {
	v := s.ver.Load() + 1
	s.ver.Store(v) // odd: readers retry from here
	s.seq.Store(seq)
	s.l.Store(math.Float64bits(ns.l))
	s.m.Store(math.Float64bits(ns.m))
	s.hw.Store(math.Float64bits(ns.hw))
	s.mult.Store(math.Float64bits(ns.mult))
	s.fast.Store(ns.fast)
	s.slow.Store(ns.slow)
	s.samples.Store(uint64(ns.est.SampleCount()))
	s.ver.Store(v + 1) // even: tuple visible
}

// read returns a consistent snapshot of the slot. Lock-free: loops only
// while a publish is in flight.
func (s *snapSlot) read(node int) NodeSnapshot {
	for {
		v := s.ver.Load()
		if v&1 != 0 {
			continue
		}
		snap := NodeSnapshot{
			Node:    node,
			Seq:     s.seq.Load(),
			L:       math.Float64frombits(s.l.Load()),
			M:       math.Float64frombits(s.m.Load()),
			HW:      math.Float64frombits(s.hw.Load()),
			Mult:    math.Float64frombits(s.mult.Load()),
			Fast:    s.fast.Load(),
			Slow:    s.slow.Load(),
			Samples: int(s.samples.Load()),
		}
		if s.ver.Load() == v {
			return snap
		}
	}
}

// readL returns just the logical clock. A single atomic load is a consistent
// value on its own, so no seqlock retry is needed — this is the skew report's
// per-node read.
func (s *snapSlot) readL() float64 {
	return math.Float64frombits(s.l.Load())
}
