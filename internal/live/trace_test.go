package live

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func testHeader() TraceHeader {
	return TraceHeader{
		Version: 1, N: 3, Edges: [][2]int{{0, 1}, {1, 2}},
		S: 1, Rho: 0.1 / 60, Mu: 0.1, Iota: 0.05,
		Tick: 0.05, BeaconInterval: 0.25,
		Link: traceParams{Eps: 0.05, Tau: 0.05, Delay: 0.05, Uncertainty: 0.05},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	h := testHeader()
	// Awkward floats on purpose: round-tripping must preserve exact bits.
	recs := []TraceRecord{
		{Kind: RecTick, T: 0.1, Node: 0, Seq: 0, DH: 1.0 / 3.0, HW: 1.0 / 3.0},
		{Kind: RecBeacon, T: 0.2, Node: 1, Seq: 0, From: 0,
			LSent: math.Nextafter(0.1, 1), MSent: 4e-324, MinTransit: 0.02, HW: 0.7},
		{Kind: RecTick, T: 0.2, Node: 1, Seq: 1, DH: 0.05 * (1 + 1e-15), HW: 0.75},
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		rec.Append(r)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Records() != uint64(len(recs)) {
		t.Fatalf("recorder counted %d records, want %d", rec.Records(), len(recs))
	}

	gotH, gotRecs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotH.N != h.N || gotH.S != h.S || gotH.Link != h.Link || len(gotH.Edges) != len(h.Edges) {
		t.Fatalf("header round trip: got %+v, want %+v", gotH, h)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("got %d records, want %d", len(gotRecs), len(recs))
	}
	for i := range recs {
		want, got := recs[i], gotRecs[i]
		if got.Kind != want.Kind || got.Node != want.Node || got.Seq != want.Seq || got.From != want.From {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
		for _, f := range [][2]float64{
			{got.T, want.T}, {got.DH, want.DH}, {got.LSent, want.LSent},
			{got.MSent, want.MSent}, {got.MinTransit, want.MinTransit}, {got.HW, want.HW},
		} {
			if math.Float64bits(f[0]) != math.Float64bits(f[1]) {
				t.Fatalf("record %d: float %v != %v (bits differ)", i, f[0], f[1])
			}
		}
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad version":  `{"version":9,"n":2}`,
		"zero nodes":   `{"version":1,"n":0}`,
		"node range":   `{"version":1,"n":2}` + "\n" + `{"kind":"tick","t":1,"node":5,"seq":0}`,
		"unknown kind": `{"version":1,"n":2}` + "\n" + `{"kind":"warp","t":1,"node":0,"seq":0}`,
		"junk header":  `not json`,
	}
	for name, in := range cases {
		if _, _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadTrace accepted %q", name, in)
		}
	}
}

func TestReplayRejectsTamperedTrace(t *testing.T) {
	h := testHeader()
	good := []TraceRecord{
		{Kind: RecTick, T: 0.1, Node: 0, Seq: 0, DH: 0.1, HW: 0.1},
		{Kind: RecTick, T: 0.2, Node: 0, Seq: 1, DH: 0.1, HW: 0.2},
	}
	if _, err := Replay(h, good); err != nil {
		t.Fatalf("clean trace rejected: %v", err)
	}

	hwEdit := append([]TraceRecord(nil), good...)
	hwEdit[1].HW = 0.25
	if _, err := Replay(h, hwEdit); err == nil {
		t.Fatal("replay accepted a trace whose recorded hw contradicts the inputs")
	}

	gap := append([]TraceRecord(nil), good...)
	gap[1].Seq = 5
	if _, err := Replay(h, gap); err == nil {
		t.Fatal("replay accepted a trace with a per-node sequence gap")
	}
}
