package live

import (
	"net"
	"testing"
	"time"
)

// TestTwoProcessRingOverTCP splits a 4-ring across two clusters (stand-ins
// for two OS processes) peered over loopback TCP: nodes 0–1 in one, 2–3 in
// the other. Every node has one local and one remote neighbor, so the test
// passes only if beacons cross the wire in both directions.
func TestTwoProcessRingOverTCP(t *testing.T) {
	base := Config{
		N: 4, Edges: ringEdges(4),
		Tick: 0.05, BeaconInterval: 0.25,
		TimeScale: 10 * time.Millisecond,
	}
	cfgA, cfgB := base, base
	cfgA.Owned = []int{0, 1}
	cfgB.Owned = []int{2, 3}
	a, err := NewCluster(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCluster(cfgB)
	if err != nil {
		t.Fatal(err)
	}

	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lnA.Close()
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lnB.Close()
	go a.ServePeers(lnA)
	go b.ServePeers(lnB)

	if _, err := a.ConnectPeer(lnB.Addr().String(), []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ConnectPeer(lnA.Addr().String(), []int{0, 1}); err != nil {
		t.Fatal(err)
	}

	a.Start()
	b.Start()
	defer b.Stop()
	defer a.Stop()

	// Wait until every node holds samples from both neighbors — one of which
	// can only have arrived over TCP.
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, c := range []*Cluster{a, b} {
			for _, s := range c.Snapshots() {
				if s.Samples < 2 {
					done = false
				}
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("nodes never heard both neighbors: A=%+v B=%+v", a.Snapshots(), b.Snapshots())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := a.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]*Cluster{"a": a, "b": b} {
		if st := c.Stats(); st.Unrouted != 0 {
			t.Fatalf("cluster %s dropped %d unrouted envelopes", name, st.Unrouted)
		}
	}
}

// TestConnectPeerRejectsMismatch pins the hello handshake: a peer configured
// for a different network size must be refused at connect time.
func TestConnectPeerRejectsMismatch(t *testing.T) {
	big, err := NewCluster(Config{N: 8, Edges: ringEdges(8)})
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewCluster(Config{N: 4, Edges: ringEdges(4)})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go big.ServePeers(ln)
	if _, err := small.ConnectPeer(ln.Addr().String(), []int{0}); err == nil {
		t.Fatal("handshake accepted peers configured for different network sizes")
	}
}
