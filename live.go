package gradsync

import (
	"fmt"
	"io"
	"time"

	"repro/internal/live"
	"repro/internal/sim"
)

// LiveConfig assembles a live-transport deployment: the same gradient
// protocol as Config's simulations, run by per-node goroutines against real
// time and real message channels (see internal/live and DESIGN.md §Live
// transport). Zero values default like Config where the fields overlap.
type LiveConfig struct {
	// Topology is the estimate graph (required).
	Topology Topology
	// S is the gradient block size (target local-skew scale); 0 → 1.
	S float64
	// Mu is the fast-mode boost µ; 0 → 0.1.
	Mu float64
	// Rho is the drift bound ρ the error budget assumes; 0 → µ/60.
	Rho float64
	// Tick is the integration step in sim units; 0 → 0.05.
	Tick float64
	// BeaconInterval is the beacon period in sim units; 0 → 0.25.
	BeaconInterval float64
	// TimeScale is the real duration of one sim unit; 0 → 20ms.
	TimeScale time.Duration
	// Rates optionally emulates hardware drift (per-node clock rates).
	Rates []float64
	// QueueCapacity bounds each per-peer send queue; 0 → 64.
	QueueCapacity int
	// BlockOnFull switches full send queues from shedding beacons (default)
	// to blocking the sender.
	BlockOnFull bool
	// Trace, when non-nil, receives a replayable run trace; feed it back
	// through ReplayLiveTrace to reproduce the run deterministically.
	Trace io.Writer
	// Seed feeds topology randomness (RandomTopology); 0 is a valid seed.
	Seed int64
}

// LiveNodeSnapshot is a point-in-time read of one live node.
type LiveNodeSnapshot = live.NodeSnapshot

// LiveSkewReport summarizes clock skew across a live network.
type LiveSkewReport = live.SkewReport

// LiveStats aggregates live transport and trace counters.
type LiveStats = live.Stats

// LiveReplayResult is the outcome of replaying a recorded live trace.
type LiveReplayResult = live.ReplayResult

// LiveNetwork is a running live deployment. Queries are safe from any
// goroutine while it runs; Stop halts it and flushes the trace.
type LiveNetwork struct {
	c *live.Cluster
}

// StartLive builds and starts a live network.
func StartLive(cfg LiveConfig) (*LiveNetwork, error) {
	if cfg.Topology.n <= 0 {
		return nil, fmt.Errorf("gradsync: live config needs a topology with at least one node")
	}
	ids, err := cfg.Topology.build(sim.NewRNG(cfg.Seed))
	if err != nil {
		return nil, err
	}
	edges := make([][2]int, len(ids))
	for i, id := range ids {
		edges[i] = [2]int{id.U, id.V}
	}
	policy := live.DropNewest
	if cfg.BlockOnFull {
		policy = live.Block
	}
	c, err := live.NewCluster(live.Config{
		N: cfg.Topology.n, Edges: edges,
		S: cfg.S, Mu: cfg.Mu, Rho: cfg.Rho,
		Tick: cfg.Tick, BeaconInterval: cfg.BeaconInterval,
		TimeScale: cfg.TimeScale, Rates: cfg.Rates,
		QueueCapacity: cfg.QueueCapacity, QueuePolicy: policy,
		Trace: cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	c.Start()
	return &LiveNetwork{c: c}, nil
}

// Stop halts the network and flushes the trace (idempotent).
func (n *LiveNetwork) Stop() error { return n.c.Stop() }

// N returns the node count.
func (n *LiveNetwork) N() int { return n.c.N() }

// SimNow returns the network's current sim time.
func (n *LiveNetwork) SimNow() float64 { return n.c.SimNow() }

// Snapshot reads one node's state.
func (n *LiveNetwork) Snapshot(i int) (LiveNodeSnapshot, error) { return n.c.Snapshot(i) }

// Snapshots reads every node's state.
func (n *LiveNetwork) Snapshots() []LiveNodeSnapshot { return n.c.Snapshots() }

// Skew reports global and local skew against the gradient target 2·S.
func (n *LiveNetwork) Skew() LiveSkewReport { return n.c.Skew() }

// Stats reports transport and trace counters.
func (n *LiveNetwork) Stats() LiveStats { return n.c.Stats() }

// Fingerprint hashes the final state (call after Stop); it equals the
// fingerprint of replaying the recorded trace.
func (n *LiveNetwork) Fingerprint() string { return n.c.Fingerprint() }

// ReplayLiveTrace deterministically re-executes a trace recorded by a live
// run through the simulation engine.
func ReplayLiveTrace(r io.Reader) (LiveReplayResult, error) {
	return live.ReplayTrace(r)
}
